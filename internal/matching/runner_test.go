package matching

import (
	"reflect"
	"testing"

	"parlist/internal/list"
	"parlist/internal/pram"
	"parlist/internal/ws"
)

// TestRunnerMatchesMatch4 asserts the Runner is a bit-identical mirror
// of Match4's default configuration: same matching, same counters, same
// phase attribution, on every executor.
func TestRunnerMatchesMatch4(t *testing.T) {
	execs := []struct {
		name string
		exec pram.Exec
	}{
		{"sequential", pram.Sequential},
		{"goroutines", pram.Goroutines},
		{"pooled", pram.Pooled},
	}
	for _, ex := range execs {
		for _, n := range []int{1, 2, 3, 7, 64, 1000, 4096} {
			for _, iters := range []int{1, 3} {
				l := list.RandomList(n, int64(n)+7)

				ref := pram.New(8, pram.WithExec(ex.exec), pram.WithWorkers(4))
				want, err := Match4(ref, l, nil, Match4Config{I: iters})
				if err != nil {
					t.Fatalf("%s n=%d i=%d: Match4: %v", ex.name, n, iters, err)
				}

				m := pram.New(8, pram.WithExec(ex.exec), pram.WithWorkers(4), pram.WithWorkspace(ws.New()))
				r, err := NewRunner(m, iters)
				if err != nil {
					t.Fatalf("NewRunner: %v", err)
				}
				var got Result
				if err := r.Run(l, &got); err != nil {
					t.Fatalf("%s n=%d i=%d: Run: %v", ex.name, n, iters, err)
				}

				if err := Verify(l, got.In); err != nil {
					t.Errorf("%s n=%d i=%d: runner matching invalid: %v", ex.name, n, iters, err)
				}
				for v := range want.In {
					if want.In[v] != got.In[v] {
						t.Fatalf("%s n=%d i=%d: In[%d] = %v, Match4 has %v", ex.name, n, iters, v, got.In[v], want.In[v])
					}
				}
				if got.Size != want.Size || got.Sets != want.Sets || got.Rounds != want.Rounds || got.TableSize != want.TableSize {
					t.Errorf("%s n=%d i=%d: meta %d/%d/%d/%d, want %d/%d/%d/%d", ex.name, n, iters,
						got.Size, got.Sets, got.Rounds, got.TableSize,
						want.Size, want.Sets, want.Rounds, want.TableSize)
				}
				if !reflect.DeepEqual(got.Stats, want.Stats) {
					t.Errorf("%s n=%d i=%d: stats diverge\n got: %+v\nwant: %+v", ex.name, n, iters, got.Stats, want.Stats)
				}
			}
		}
	}
}

// TestRunnerReuseIsDeterministic reruns one Runner on a warm machine and
// workspace: the second and third results must be identical to the first
// (counters included, after the machine reset).
func TestRunnerReuseIsDeterministic(t *testing.T) {
	l := list.RandomList(2048, 11)
	m := pram.New(8, pram.WithExec(pram.Pooled), pram.WithWorkers(4), pram.WithWorkspace(ws.New()))
	defer m.Close()
	r, err := NewRunner(m, 3)
	if err != nil {
		t.Fatal(err)
	}

	run := func() (Result, []bool) {
		m.Workspace().Reset()
		m.Reset()
		var res Result
		if err := r.Run(l, &res); err != nil {
			t.Fatal(err)
		}
		return res, append([]bool(nil), res.In...)
	}

	first, firstIn := run()
	for i := 0; i < 2; i++ {
		res, in := run()
		if !reflect.DeepEqual(in, firstIn) {
			t.Fatalf("rerun %d: matching diverged", i)
		}
		if res.Size != first.Size || res.Sets != first.Sets {
			t.Fatalf("rerun %d: meta diverged", i)
		}
		if !reflect.DeepEqual(res.Stats, first.Stats) {
			t.Fatalf("rerun %d: stats diverged\n got: %+v\nwant: %+v", i, res.Stats, first.Stats)
		}
	}
}

// TestRunnerSteadyStateZeroAllocs is the tentpole's headline property:
// after a warm-up run, a full maximal-matching request on a reused
// machine + workspace performs no heap allocation.
func TestRunnerSteadyStateZeroAllocs(t *testing.T) {
	l := list.RandomList(4096, 5)
	m := pram.New(8, pram.WithWorkspace(ws.New()))
	r, err := NewRunner(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	run := func() {
		m.Workspace().Reset()
		m.Reset()
		if err := r.Run(l, &res); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the workspace free lists and the stats buffers
	run()
	if avg := testing.AllocsPerRun(20, run); avg != 0 {
		t.Errorf("steady-state allocs/run = %v, want 0", avg)
	}
}
