package matching

import (
	"testing"

	"parlist/internal/list"
	"parlist/internal/partition"
	"parlist/internal/pram"
	"parlist/internal/sortint"
)

// TestSameProcessorReadWriteIsLegal pins the model-fidelity upgrade: a
// PRAM processor may read and write the same cell within one step; only
// cross-processor collisions violate EREW.
func TestSameProcessorReadWriteIsLegal(t *testing.T) {
	m := pram.New(4)
	a := pram.NewCheckedArray(m, pram.EREW, "a", 4)
	m.ProcFor(func(q int) {
		v := a.Read(q)
		a.Write(q, v+1)
	})
	if v := a.Violations(); len(v) != 0 {
		t.Fatalf("own-cell read+write flagged: %v", v)
	}
}

// TestMatch2AdmitStepIsEREW certifies the access discipline of Match2's
// step 3 (the set-by-set greedy admission) with instrumented memory:
// within one set the pointers have disjoint endpoints, so the DONE
// reads/writes never collide across processors.
func TestMatch2AdmitStepIsEREW(t *testing.T) {
	n := 256
	l := list.RandomList(n, 3)
	// Build the partition and sorted order exactly as Match2 does, on a
	// plain machine (the sort itself has its own accounting tests).
	prep := pram.New(8)
	e := partition.NewEvaluator(partition.MSB, 10)
	lab := partition.Iterate(prep, l, e, 3)
	K := partition.RangeAfter(n, 3)
	keys := make([]int, n)
	for v := 0; v < n; v++ {
		if l.Next[v] == list.Nil {
			keys[v] = K
		} else {
			keys[v] = lab[v]
		}
	}
	perm := sortint.SequentialByKey(keys, K+1)

	// Replay step 3 against checked arrays on a fresh machine with full
	// parallelism (p = n — every body in one step, the hardest case).
	m := pram.New(n)
	done := pram.NewCheckedArray(m, pram.EREW, "done", n)
	in := pram.NewCheckedArray(m, pram.EREW, "in", n)

	// Segment boundaries per set.
	start := make(map[int]int)
	for i := 0; i < n; i++ {
		k := keys[perm[i]]
		if _, ok := start[k]; !ok {
			start[k] = i
		}
	}
	for k := 0; k < K; k++ {
		lo, ok := start[k]
		if !ok {
			continue
		}
		hi := n
		for kk := k + 1; kk <= K; kk++ {
			if s, ok2 := start[kk]; ok2 {
				hi = s
				break
			}
		}
		seg := perm[lo:hi]
		m.ParFor(len(seg), func(i int) {
			a := seg[i]
			b := l.Next[a]
			if b == list.Nil {
				return
			}
			if done.Read(a) == 0 && done.Read(b) == 0 {
				done.Write(a, 1)
				done.Write(b, 1)
				in.Write(a, 1)
			}
		})
	}

	for _, arr := range []*pram.CheckedArray{done, in} {
		if v := arr.Violations(); len(v) != 0 {
			t.Fatalf("EREW violations in Match2 admit: %v", v[:min(4, len(v))])
		}
	}
	// And the produced matching is the real thing.
	res := make([]bool, n)
	for v := 0; v < n; v++ {
		res[v] = in.Get(v) == 1
	}
	if err := Verify(l, res); err != nil {
		t.Fatalf("replayed admit step produced invalid matching: %v", err)
	}
}

// TestWalkDownProcessingIsConflictFree certifies §3's safety claim with
// instrumented memory: during Match4's WalkDowns, no two processors
// ever touch the same matching-state cell in the same step. We replay
// the direct-admission processing against checked arrays at p = y (one
// processor per column, the paper's configuration).
func TestWalkDownProcessingIsConflictFree(t *testing.T) {
	n := 512
	l := list.RandomList(n, 11)
	prep := pram.New(8)
	lab, K := PartitionIterated(prep, l, nil, 2)
	x := K
	y := (n + x - 1) / x
	colLen := func(c int) int {
		lo := c * x
		hi := lo + x
		if hi > n {
			hi = n
		}
		return hi - lo
	}

	// Column sorts (host-side here; their discipline is per-processor
	// local by construction).
	cellNode := make([]int, n)
	rowOf := make([]int, n)
	colKeys := make([][]int, y)
	for c := 0; c < y; c++ {
		lo := c * x
		ln := colLen(c)
		keys := make([]int, ln)
		for j := 0; j < ln; j++ {
			keys[j] = lab[lo+j]
		}
		perm := sortint.SequentialByKey(keys, x)
		sorted := make([]int, ln)
		for j := 0; j < ln; j++ {
			v := lo + perm[j]
			cellNode[lo+j] = v
			rowOf[v] = j
			sorted[j] = keys[perm[j]]
		}
		colKeys[c] = sorted
	}
	pred := l.Pred()
	_ = pred

	m := pram.New(y)
	used := pram.NewCheckedArray(m, pram.EREW, "used", n)
	in := pram.NewCheckedArray(m, pram.EREW, "in", n)
	isPtr := func(v int) bool { return l.Next[v] != list.Nil }
	intraRow := func(v int) bool { return rowOf[v] == rowOf[l.Next[v]] }
	process := func(v int) {
		s := l.Next[v]
		if used.Read(v) == 0 && used.Read(s) == 0 {
			used.Write(v, 1)
			used.Write(s, 1)
			in.Write(v, 1)
		}
	}

	for r := 0; r < x; r++ {
		m.ProcFor(func(c int) {
			if r >= colLen(c) {
				return
			}
			v := cellNode[c*x+r]
			if !isPtr(v) || intraRow(v) {
				return
			}
			process(v)
		})
	}
	states := make([]walkState, y)
	for step := 0; step <= 2*x-2; step++ {
		m.ProcFor(func(c int) {
			lo := c * x
			r := states[c].advance(colKeys[c], colLen(c))
			if r < 0 {
				return
			}
			v := cellNode[lo+r]
			if !isPtr(v) || !intraRow(v) {
				return
			}
			process(v)
		})
	}

	for _, arr := range []*pram.CheckedArray{used, in} {
		if v := arr.Violations(); len(v) != 0 {
			t.Fatalf("WalkDown processing conflicts: %v", v[:min(4, len(v))])
		}
	}
	res := make([]bool, n)
	for v := 0; v < n; v++ {
		res[v] = in.Get(v) == 1
	}
	if err := Verify(l, res); err != nil {
		t.Fatalf("replayed WalkDown produced invalid matching: %v", err)
	}
}
