// Package matching implements the paper's contribution: parallel
// algorithms for computing a maximal matching of the pointers of a
// linked list on a simulated PRAM.
//
// A matching is a set of pointers no two of which are incident on the
// same node; it is maximal if no further pointer can be added. On a
// linked list the pointers form a path, so two pointers conflict exactly
// when one is the successor of the other. Computing a maximal matching
// in parallel is the canonical symmetry-breaking problem the paper
// attacks.
//
// The four algorithms:
//
//	Match1 (Lemma 3)  — iterate the matching partition function G(n)
//	                    times: O(nG(n)/p + G(n)).
//	Match2 (Lemma 4)  — partition into O(log^(2) n) sets, globally sort
//	                    by set number, then greedily admit sets one by
//	                    one: O(n/p + log n); the sort dominates.
//	Match3 (Lemma 5)  — crunch labels, concatenate by pointer jumping,
//	                    one table lookup: O(n·logG(n)/p + logG(n)).
//	Match4 (Thm 1–2)  — the paper's optimization: a 2-D processor
//	                    schedule (WalkDown1/WalkDown2) converts any
//	                    O(log^(i) n)-set partition into a maximal
//	                    matching without global sorting:
//	                    O(n·log i/p + log^(i) n + log i), optimal using
//	                    up to n/log^(i) n processors.
package matching

import (
	"fmt"
	"math/rand"

	"parlist/internal/bits"
	"parlist/internal/list"
	"parlist/internal/partition"
	"parlist/internal/pram"
	"parlist/internal/ws"
)

// Result reports a computed matching plus the accounting needed by the
// experiments.
type Result struct {
	Algorithm string
	// In[v] reports whether the pointer ⟨v, suc(v)⟩ is in the matching;
	// In[tail] is always false (the tail has no pointer).
	In []bool
	// Size is the number of matched pointers.
	Size int
	// Sets is the number of matching-set labels the partition stage used
	// (the range bound, not the occupied count), 0 if not applicable.
	Sets int
	// Rounds records iteration counts (partition steps, jumping rounds).
	Rounds int
	// TableSize is the lookup-table size for table-based algorithms.
	TableSize int
	// Stats is the PRAM accounting snapshot.
	Stats pram.Stats
}

// Count returns the number of true entries of in.
func Count(in []bool) int {
	c := 0
	for _, b := range in {
		if b {
			c++
		}
	}
	return c
}

// Verify checks that in describes a maximal matching of l's pointers:
//
//	matching:  no two chosen pointers share a node, i.e. never
//	           in[v] && in[suc(v)] for a real pointer pair;
//	maximal:   every unchosen real pointer has a chosen neighbour.
//
// It also checks the paper's stated consequence that at least one of any
// three consecutive pointers is matched (implied by maximality on a
// path, kept as an explicit cross-check).
func Verify(l *list.List, in []bool) error {
	n := l.Len()
	if len(in) != n {
		return fmt.Errorf("matching: length %d, want %d", len(in), n)
	}
	pred := l.Pred()
	real := func(v int) bool { return v != list.Nil && l.Next[v] != list.Nil }
	for v := 0; v < n; v++ {
		if !real(v) {
			if in[v] {
				return fmt.Errorf("matching: tail node %d marked matched", v)
			}
			continue
		}
		s := l.Next[v]
		if in[v] && real(s) && in[s] {
			return fmt.Errorf("matching: adjacent pointers %d and %d both matched", v, s)
		}
		if !in[v] {
			prevMatched := real(pred[v]) && in[pred[v]]
			nextMatched := real(s) && in[s]
			if !prevMatched && !nextMatched {
				return fmt.Errorf("matching: pointer %d unmatched with both neighbours unmatched (not maximal)", v)
			}
		}
	}
	// Three-consecutive check.
	run := 0
	for v := l.Head; v != list.Nil && l.Next[v] != list.Nil; v = l.Next[v] {
		if in[v] {
			run = 0
		} else {
			run++
			if run >= 3 {
				return fmt.Errorf("matching: three consecutive unmatched pointers ending at %d", v)
			}
		}
	}
	return nil
}

// Sequential computes a maximal matching with the greedy linear walk —
// the T₁ = O(n) baseline the paper's optimality definition p·T = O(T₁)
// is measured against. It matches pointers 0, 2, 4, … along the list.
func Sequential(l *list.List) []bool {
	in := make([]bool, l.Len())
	v := l.Head
	for v != list.Nil && l.Next[v] != list.Nil {
		in[v] = true
		v = l.Next[v]
		if v != list.Nil {
			v = l.Next[v]
		}
	}
	return in
}

// Randomized computes a maximal matching by randomized symmetry breaking
// (the coin-tossing approach of the randomized prefix algorithms the
// introduction contrasts with): each round every live pointer flips a
// coin and enters the matching if it drew heads and its successor
// pointer drew tails; matched pointers retire themselves and their
// neighbours. Expected O(log n) rounds. Returns the matching and the
// number of rounds.
func Randomized(m *pram.Machine, l *list.List, seed int64) ([]bool, int) {
	n := l.Len()
	w := m.Workspace()
	in := ws.Bools(w, n)
	live := ws.Bools(w, n)
	pred := predPar(m, l)
	m.ParFor(n, func(v int) { live[v] = l.Next[v] != list.Nil })
	coin := ws.Bools(w, n)
	rng := rand.New(rand.NewSource(seed))
	rounds := 0
	for {
		any := false
		for v := 0; v < n; v++ {
			if live[v] {
				any = true
				break
			}
		}
		// Charge the liveness OR-reduction: O(n/p + log p).
		p64 := int64(m.Processors())
		m.Charge((int64(n)+p64-1)/p64+int64(logCeil(m.Processors())), int64(n))
		if !any {
			break
		}
		rounds++
		// Flip coins (host RNG; each cell written once).
		for v := 0; v < n; v++ {
			coin[v] = live[v] && rng.Intn(2) == 1
		}
		m.Charge(int64((n+m.Processors()-1)/m.Processors()), int64(n))
		sel := ws.Bools(w, n)
		m.ParFor(n, func(v int) {
			if !live[v] || !coin[v] {
				return
			}
			s := l.Next[v]
			if s != list.Nil && l.Next[s] != list.Nil && coin[s] {
				return // successor pointer also heads: defer
			}
			p := pred[v]
			if p != list.Nil && l.Next[p] != list.Nil && coin[p] {
				return // predecessor pointer heads: it wins ties upstream
			}
			sel[v] = true
		})
		m.ParFor(n, func(v int) {
			if sel[v] {
				in[v] = true
			}
		})
		m.ParFor(n, func(v int) {
			if !live[v] {
				return
			}
			s := l.Next[v]
			p := pred[v]
			if sel[v] || (s != list.Nil && sel[s]) || (p != list.Nil && sel[p]) {
				live[v] = false
			}
		})
		if rounds > 64*(1+n) {
			panic("matching: Randomized did not converge")
		}
	}
	return in, rounds
}

// chargeEvaluatorReplication applies the appendix's EREW preprocessing
// cost when the matching partition function is computed with lookup
// tables: "to run Match1, Match3 and Match4 on the EREW model without
// building the number conversion instructions into the processors we
// need copies of T to be set up in the preprocessing stage". Each
// processor gets its own copy of the unary table (and, for the MSB
// variant, the bit-reversal table), charged via bits.TableBank. With a
// direct (instruction-based) evaluator there is nothing to replicate.
func chargeEvaluatorReplication(m *pram.Machine, e *partition.Evaluator) {
	if !e.UsesTables() {
		return
	}
	size := 1 << uint(e.Width()) // unary table entries
	if e.Variant() == partition.MSB {
		size *= 2 // plus the bit-reversal permutation table
	}
	m.Phase("table-replicate")
	bank := bits.NewTableBank(m.Processors(), size)
	m.Charge(bank.SetupTime, bank.SetupWork)
}

// predPar computes predecessor pointers with one EREW round.
func predPar(m *pram.Machine, l *list.List) []int {
	n := l.Len()
	pred := ws.IntsNoZero(m.Workspace(), n) // first round writes every cell
	m.ParFor(n, func(v int) { pred[v] = list.Nil })
	m.ParFor(n, func(v int) {
		if s := l.Next[v]; s != list.Nil {
			pred[s] = v
		}
	})
	return pred
}
