// Executor equivalence: every algorithm must produce bit-identical
// results AND bit-identical accounting (Time, Work, per-phase stats)
// under the sequential executor, the spawn-per-round goroutine executor,
// and the persistent pooled executor with fused-round dispatch. The
// package is external (matching_test) so the suite can also cover list
// ranking, which imports matching.
package matching_test

import (
	"reflect"
	"testing"

	"parlist/internal/list"
	"parlist/internal/matching"
	"parlist/internal/partition"
	"parlist/internal/pram"
	"parlist/internal/rank"
	"parlist/internal/verify"
)

var equivExecs = []pram.Exec{pram.Sequential, pram.Goroutines, pram.Pooled}

// TestExecutorEquivalenceMatching runs Match1–Match4 (all routes) under
// all three executors on the same randomized input, asserting identical
// matchings and accounting.
func TestExecutorEquivalenceMatching(t *testing.T) {
	n := 30000
	l := list.RandomList(n, 77)
	type algo struct {
		name string
		run  func(m *pram.Machine) (*matching.Result, error)
	}
	algos := []algo{
		{"match1", func(m *pram.Machine) (*matching.Result, error) { return matching.Match1(m, l, nil), nil }},
		{"match2", func(m *pram.Machine) (*matching.Result, error) { return matching.Match2(m, l, nil), nil }},
		{"match3", func(m *pram.Machine) (*matching.Result, error) {
			return matching.Match3(m, l, nil, matching.Match3Config{})
		}},
		{"match4", func(m *pram.Machine) (*matching.Result, error) {
			return matching.Match4(m, l, nil, matching.Match4Config{I: 3})
		}},
		{"match4-table", func(m *pram.Machine) (*matching.Result, error) {
			return matching.Match4(m, l, nil, matching.Match4Config{I: 4, UseTable: true})
		}},
		{"match4-coloring", func(m *pram.Machine) (*matching.Result, error) {
			return matching.Match4(m, l, nil, matching.Match4Config{I: 2, ViaColoring: true})
		}},
	}
	for _, a := range algos {
		var ref *matching.Result
		for _, exec := range equivExecs {
			m := pram.New(64, pram.WithExec(exec), pram.WithWorkers(4))
			r, err := a.run(m)
			m.Close()
			if err != nil {
				t.Fatalf("%s %v: %v", a.name, exec, err)
			}
			if err := matching.Verify(l, r.In); err != nil {
				t.Errorf("%s %v: %v", a.name, exec, err)
			}
			if err := verify.MaximalMatching(l, r.In); err != nil {
				t.Errorf("%s %v: independent checker: %v", a.name, exec, err)
			}
			if exec == pram.Sequential {
				ref = r
				continue
			}
			if r.Stats.Time != ref.Stats.Time || r.Stats.Work != ref.Stats.Work {
				t.Errorf("%s %v: accounting diverged: %d/%d vs sequential %d/%d",
					a.name, exec, r.Stats.Time, r.Stats.Work, ref.Stats.Time, ref.Stats.Work)
			}
			if !reflect.DeepEqual(r.Stats.Phases, ref.Stats.Phases) {
				t.Errorf("%s %v: phase stats diverged:\n%+v\nvs sequential\n%+v",
					a.name, exec, r.Stats.Phases, ref.Stats.Phases)
			}
			if !reflect.DeepEqual(r.In, ref.In) {
				t.Errorf("%s %v: matching differs from sequential executor", a.name, exec)
			}
		}
	}
}

// TestExecutorEquivalenceRank runs contraction ranking and Wyllie (the
// fused pointer-jumping hot loop) under all three executors.
func TestExecutorEquivalenceRank(t *testing.T) {
	n := 20000
	l := list.RandomList(n, 99)
	type run struct {
		ranks []int
		stats pram.Stats
	}
	for _, scheme := range []string{"contraction", "wyllie"} {
		var ref run
		for _, exec := range equivExecs {
			m := pram.New(64, pram.WithExec(exec), pram.WithWorkers(4))
			var rk []int
			var err error
			if scheme == "contraction" {
				rk, _, err = rank.Rank(m, l, nil)
			} else {
				rk = rank.WyllieRank(m, l)
			}
			if err != nil {
				t.Fatalf("%s %v: %v", scheme, exec, err)
			}
			got := run{ranks: rk, stats: m.Snapshot()}
			m.Close()
			if err := verify.Ranks(l, rk); err != nil {
				t.Errorf("%s %v: independent checker: %v", scheme, exec, err)
			}
			if exec == pram.Sequential {
				ref = got
				continue
			}
			if got.stats.Time != ref.stats.Time || got.stats.Work != ref.stats.Work {
				t.Errorf("%s %v: accounting diverged: %d/%d vs sequential %d/%d",
					scheme, exec, got.stats.Time, got.stats.Work, ref.stats.Time, ref.stats.Work)
			}
			if !reflect.DeepEqual(got.stats.Phases, ref.stats.Phases) {
				t.Errorf("%s %v: phase stats diverged", scheme, exec)
			}
			if !reflect.DeepEqual(got.ranks, ref.ranks) {
				t.Errorf("%s %v: ranks differ from sequential executor", scheme, exec)
			}
		}
	}
}

// TestExecutorEquivalencePartition covers the fused Iterate loop on its
// own, under both access disciplines.
func TestExecutorEquivalencePartition(t *testing.T) {
	n := 50000
	l := list.RandomList(n, 41)
	e := partition.NewEvaluator(partition.MSB, 24)
	for _, d := range []partition.Discipline{partition.DisciplineEREW, partition.DisciplineCREW} {
		var refLab []int
		var refTime, refWork int64
		for _, exec := range equivExecs {
			m := pram.New(256, pram.WithExec(exec), pram.WithWorkers(4))
			lab := partition.IterateWith(m, l, e, 3, d)
			tm, wk := m.Time(), m.Work()
			m.Close()
			if err := verify.Partition(l, lab, 0); err != nil {
				t.Errorf("%v %v: independent checker: %v", d, exec, err)
			}
			if exec == pram.Sequential {
				refLab, refTime, refWork = lab, tm, wk
				continue
			}
			if tm != refTime || wk != refWork {
				t.Errorf("%v %v: accounting diverged: %d/%d vs %d/%d", d, exec, tm, wk, refTime, refWork)
			}
			if !reflect.DeepEqual(lab, refLab) {
				t.Errorf("%v %v: labels differ from sequential executor", d, exec)
			}
		}
	}
}
