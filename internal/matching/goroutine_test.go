package matching

import (
	"testing"

	"parlist/internal/list"
	"parlist/internal/pram"
)

// TestGoroutineExecutorAllAlgorithms runs every algorithm under the
// goroutine executor (the real-parallelism substitution) and checks
// both the matchings and the step-count agreement with the sequential
// executor.
func TestGoroutineExecutorAllAlgorithms(t *testing.T) {
	n := 30000
	l := list.RandomList(n, 77)
	type algo struct {
		name string
		run  func(m *pram.Machine) (*Result, error)
	}
	algos := []algo{
		{"match1", func(m *pram.Machine) (*Result, error) { return Match1(m, l, nil), nil }},
		{"match2", func(m *pram.Machine) (*Result, error) { return Match2(m, l, nil), nil }},
		{"match3", func(m *pram.Machine) (*Result, error) {
			return Match3(m, l, nil, Match3Config{})
		}},
		{"match4", func(m *pram.Machine) (*Result, error) {
			return Match4(m, l, nil, Match4Config{I: 3})
		}},
		{"match4-table", func(m *pram.Machine) (*Result, error) {
			return Match4(m, l, nil, Match4Config{I: 4, UseTable: true})
		}},
		{"match4-coloring", func(m *pram.Machine) (*Result, error) {
			return Match4(m, l, nil, Match4Config{I: 2, ViaColoring: true})
		}},
	}
	for _, a := range algos {
		mSeq := pram.New(64)
		rSeq, err := a.run(mSeq)
		if err != nil {
			t.Fatalf("%s sequential: %v", a.name, err)
		}
		mGo := pram.New(64, pram.WithExec(pram.Goroutines), pram.WithWorkers(4))
		rGo, err := a.run(mGo)
		if err != nil {
			t.Fatalf("%s goroutines: %v", a.name, err)
		}
		if err := Verify(l, rGo.In); err != nil {
			t.Errorf("%s goroutines: %v", a.name, err)
		}
		if rSeq.Stats.Time != rGo.Stats.Time || rSeq.Stats.Work != rGo.Stats.Work {
			t.Errorf("%s: executors disagree on accounting: %d/%d vs %d/%d",
				a.name, rSeq.Stats.Time, rSeq.Stats.Work, rGo.Stats.Time, rGo.Stats.Work)
		}
	}
}
