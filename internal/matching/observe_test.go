package matching_test

import (
	"reflect"
	"testing"
	"time"

	"parlist/internal/list"
	"parlist/internal/matching"
	"parlist/internal/pram"
)

// nopObserver implements pram.Observer with empty bodies: the cheapest
// possible observer, used to isolate the effect of merely attaching one.
type nopObserver struct{}

func (nopObserver) RoundObserved(time.Duration, int)               {}
func (nopObserver) BarrierWaitObserved(int, time.Duration)         {}
func (nopObserver) PhaseObserved(string, time.Time, time.Duration) {}

// runAll runs every matching algorithm on one machine and returns the
// accumulated Stats plus the matchings (to confirm outputs, not just
// accounting, are unaffected).
func runAll(t *testing.T, m *pram.Machine, l *list.List) (pram.Stats, [][]bool) {
	t.Helper()
	var outs [][]bool
	outs = append(outs, matching.Match1(m, l, nil).In)
	outs = append(outs, matching.Match2(m, l, nil).In)
	r3, err := matching.Match3(m, l, nil, matching.Match3Config{})
	if err != nil {
		t.Fatalf("match3: %v", err)
	}
	outs = append(outs, r3.In)
	r4, err := matching.Match4(m, l, nil, matching.Match4Config{I: 3})
	if err != nil {
		t.Fatalf("match4: %v", err)
	}
	outs = append(outs, r4.In)
	return m.Snapshot(), outs
}

// TestStatsIdenticalWithObserverAllAlgorithms is the acceptance-level
// equivalence test: on every executor, running the full algorithm suite
// with an Observer attached yields Stats (and matchings) bit-identical
// to the unobserved run. Observation is a wall-clock side channel only.
func TestStatsIdenticalWithObserverAllAlgorithms(t *testing.T) {
	l := list.RandomList(2048, 7)
	for _, ex := range []pram.Exec{pram.Sequential, pram.Goroutines, pram.Pooled} {
		t.Run(ex.String(), func(t *testing.T) {
			plain := pram.New(16, pram.WithExec(ex), pram.WithWorkers(4))
			defer plain.Close()
			observed := pram.New(16, pram.WithExec(ex), pram.WithWorkers(4),
				pram.WithObserver(nopObserver{}))
			defer observed.Close()

			sa, oa := runAll(t, plain, l)
			sb, ob := runAll(t, observed, l)
			observed.FlushSpans()

			if !reflect.DeepEqual(sa, sb) {
				t.Errorf("Stats diverge under observation:\n  off: %+v\n  on:  %+v", sa, sb)
			}
			if !reflect.DeepEqual(oa, ob) {
				t.Error("matchings diverge under observation")
			}
		})
	}
}

// TestTracerPooledRoundAttribution (satellite) proves the Tracer's
// round-by-round attribution is executor-independent: the same
// algorithm traced under Pooled yields entry-for-entry identical
// Phase/Kind/Items/Time/Work logs as under Sequential. Rounds are
// recorded by the coordinator in program order in both cases, so
// parallel dispatch must not reorder, split, or re-attribute them.
func TestTracerPooledRoundAttribution(t *testing.T) {
	l := list.RandomList(4096, 11)
	run := func(ex pram.Exec) []pram.TraceEntry {
		var tr pram.Tracer
		m := pram.New(16, pram.WithExec(ex), pram.WithWorkers(4), pram.WithTracer(&tr))
		defer m.Close()
		if _, err := matching.Match4(m, l, nil, matching.Match4Config{I: 3}); err != nil {
			t.Fatalf("%v: %v", ex, err)
		}
		m.Phase("m2")
		matching.Match2(m, l, nil)
		return tr.Entries()
	}
	seq := run(pram.Sequential)
	pooled := run(pram.Pooled)
	if len(seq) == 0 {
		t.Fatal("sequential trace is empty")
	}
	if !reflect.DeepEqual(seq, pooled) {
		limit := len(seq)
		if len(pooled) < limit {
			limit = len(pooled)
		}
		for i := 0; i < limit; i++ {
			if seq[i] != pooled[i] {
				t.Fatalf("trace diverges at round %d:\n  seq:    %+v\n  pooled: %+v", i, seq[i], pooled[i])
			}
		}
		t.Fatalf("trace lengths differ: seq %d, pooled %d", len(seq), len(pooled))
	}
}
