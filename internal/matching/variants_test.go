package matching

import (
	"testing"

	"parlist/internal/list"
	"parlist/internal/partition"
	"parlist/internal/pram"
)

func TestMatch3EREWCopiesCharged(t *testing.T) {
	n := 1 << 12
	l := list.RandomList(n, 3)
	run := func(cfg Match3Config) (*Result, []pram.PhaseStat) {
		m := pram.New(64)
		r, err := Match3(m, l, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r, r.Stats.Phases
	}
	rPlain, _ := run(Match3Config{})
	rCopies, phases := run(Match3Config{EREWCopies: true})
	if err := Verify(l, rCopies.In); err != nil {
		t.Fatal(err)
	}
	if rCopies.Stats.Time <= rPlain.Stats.Time {
		t.Errorf("EREW replication not charged: %d ≤ %d", rCopies.Stats.Time, rPlain.Stats.Time)
	}
	found := false
	for _, ph := range phases {
		if ph.Name == "table-replicate" && ph.Time > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no table-replicate phase recorded")
	}
}

func TestMatch4RowMajorLayout(t *testing.T) {
	for _, n := range []int{2, 3, 7, 64, 1000, 4096, 100001} {
		for _, g := range list.Generators() {
			l := g.Make(n, 17)
			mc := pram.New(32)
			rc, err := Match4(mc, l, nil, Match4Config{I: 2})
			if err != nil {
				t.Fatal(err)
			}
			mr := pram.New(32)
			rr, err := Match4(mr, l, nil, Match4Config{I: 2, RowMajor: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(l, rr.In); err != nil {
				t.Errorf("row-major n=%d %s: %v", n, g.Name, err)
			}
			// The PRAM cost model is layout-uniform: identical step counts.
			if rc.Stats.Time != rr.Stats.Time {
				t.Errorf("n=%d %s: layouts disagree on steps: %d vs %d",
					n, g.Name, rc.Stats.Time, rr.Stats.Time)
			}
		}
	}
}

func TestMatch4RowMajorViaColoring(t *testing.T) {
	l := list.RandomList(5000, 23)
	m := pram.New(64)
	r, err := Match4(m, l, nil, Match4Config{I: 3, RowMajor: true, ViaColoring: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(l, r.In); err != nil {
		t.Error(err)
	}
}

func TestMatchAlgorithmsWithLSBVariant(t *testing.T) {
	// The paper's computation-friendly variant must work throughout.
	n := 2048
	l := list.RandomList(n, 29)
	e := partition.NewEvaluator(partition.LSB, 12)
	m := pram.New(16)
	if err := Verify(l, Match1(m, l, e).In); err != nil {
		t.Errorf("match1 lsb: %v", err)
	}
	m = pram.New(16)
	if err := Verify(l, Match2(m, l, e).In); err != nil {
		t.Errorf("match2 lsb: %v", err)
	}
	m = pram.New(16)
	r3, err := Match3(m, l, e, Match3Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(l, r3.In); err != nil {
		t.Errorf("match3 lsb: %v", err)
	}
	m = pram.New(16)
	r4, err := Match4(m, l, e, Match4Config{I: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(l, r4.In); err != nil {
		t.Errorf("match4 lsb: %v", err)
	}
}

func TestMatchAlgorithmsWithTableEvaluator(t *testing.T) {
	// The appendix's lookup-table computation of f, end to end.
	n := 1024
	l := list.RandomList(n, 31)
	for _, v := range []partition.Variant{partition.MSB, partition.LSB} {
		e := partition.NewTableEvaluator(v, 11)
		m := pram.New(8)
		if err := Verify(l, Match1(m, l, e).In); err != nil {
			t.Errorf("match1 table-%v: %v", v, err)
		}
		m = pram.New(8)
		r, err := Match4(m, l, e, Match4Config{I: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(l, r.In); err != nil {
			t.Errorf("match4 table-%v: %v", v, err)
		}
	}
}

func TestScheduleMatchingWithExternalPartitions(t *testing.T) {
	// §4's generic claim: any matching partition feeds the schedule.
	for _, n := range []int{2, 10, 1000, 4096} {
		l := list.RandomList(n, 43)
		// Source 1: the Fig.-2 bisection sets (one f application).
		sets, _ := partition.Bisection(l)
		K := 2 * width(n)
		for v := range sets {
			if sets[v] < 0 {
				sets[v] = 0 // tail placeholder
			}
		}
		m := pram.New(16)
		r, err := ScheduleMatching(m, l, sets, K)
		if err != nil {
			t.Fatalf("n=%d bisection: %v", n, err)
		}
		if err := Verify(l, r.In); err != nil {
			t.Errorf("n=%d bisection: %v", n, err)
		}
		// Source 2: an LSB-variant iterated partition, produced outside
		// the Match4 pipeline.
		e := partition.NewEvaluator(partition.LSB, 12)
		lab2 := partition.Iterate(pram.New(8), l, e, 2)
		m2 := pram.New(16)
		r2, err := ScheduleMatching(m2, l, lab2, partition.RangeAfter(n, 2))
		if err != nil {
			t.Fatalf("n=%d iterated: %v", n, err)
		}
		if err := Verify(l, r2.In); err != nil {
			t.Errorf("n=%d iterated: %v", n, err)
		}
	}
}

func TestScheduleMatchingRejectsBadInput(t *testing.T) {
	l := list.SequentialList(8)
	m := pram.New(2)
	if _, err := ScheduleMatching(m, l, []int{0, 1}, 2); err == nil {
		t.Error("short labels accepted")
	}
	if _, err := ScheduleMatching(m, l, make([]int, 8), 0); err == nil {
		t.Error("zero range accepted")
	}
	bad := []int{0, 1, 0, 1, 0, 1, 9, 0} // out-of-range pointer label
	if _, err := ScheduleMatching(m, l, bad, 2); err == nil {
		t.Error("out-of-range label accepted")
	}
}

func TestScheduleMatchingRejectsImproperPartition(t *testing.T) {
	l := list.SequentialList(6)
	bad := []int{0, 0, 1, 0, 1, 0} // adjacent pointers 0 and 1 share label 0
	if _, err := ScheduleMatching(pram.New(2), l, bad, 2); err == nil {
		t.Error("improper partition accepted")
	}
}
