package matching

import (
	"testing"
	"testing/quick"

	"parlist/internal/list"
	"parlist/internal/pram"
)

func TestVerifyAcceptsSequentialGreedy(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 100} {
		l := list.RandomList(n, 1)
		if err := Verify(l, Sequential(l)); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestVerifyRejectsAdjacentMatched(t *testing.T) {
	l := list.SequentialList(4)
	in := []bool{true, true, false, false}
	if Verify(l, in) == nil {
		t.Error("accepted adjacent matched pointers")
	}
}

func TestVerifyRejectsNonMaximal(t *testing.T) {
	l := list.SequentialList(5)
	in := []bool{true, false, false, false, false} // pointer 2 addable
	if Verify(l, in) == nil {
		t.Error("accepted non-maximal matching")
	}
	in = []bool{false, false, false, false, false}
	if Verify(l, in) == nil {
		t.Error("accepted empty matching on a path")
	}
}

func TestVerifyRejectsMatchedTail(t *testing.T) {
	l := list.SequentialList(3)
	in := []bool{true, false, true}
	if Verify(l, in) == nil {
		t.Error("accepted matched tail")
	}
}

func TestVerifyRejectsWrongLength(t *testing.T) {
	l := list.SequentialList(3)
	if Verify(l, []bool{true}) == nil {
		t.Error("accepted wrong length")
	}
}

func TestVerifySingleNode(t *testing.T) {
	l := list.SequentialList(1)
	if err := Verify(l, []bool{false}); err != nil {
		t.Errorf("single node: %v", err)
	}
}

func TestCount(t *testing.T) {
	if Count([]bool{true, false, true, true}) != 3 {
		t.Error("Count wrong")
	}
	if Count(nil) != 0 {
		t.Error("Count(nil) != 0")
	}
}

func TestSequentialMatchesAlternating(t *testing.T) {
	l := list.SequentialList(7) // 6 pointers
	in := Sequential(l)
	want := []bool{true, false, true, false, true, false, false}
	for v := range want {
		if in[v] != want[v] {
			t.Fatalf("in = %v", in)
		}
	}
	if Count(in) != 3 {
		t.Fatalf("size = %d", Count(in))
	}
}

func TestMatchingSizeBounds(t *testing.T) {
	// A maximal matching on a path of m pointers has between ⌈m/3⌉ and
	// ⌊(m+1)/2⌋ pointers.
	check := func(seed int64, nn uint16) bool {
		n := int(nn)%500 + 2
		l := list.RandomList(n, seed)
		m := pram.New(16)
		r, err := Match4(m, l, nil, Match4Config{I: 2})
		if err != nil || Verify(l, r.In) != nil {
			return false
		}
		ptrs := n - 1
		lo := (ptrs + 2) / 3
		hi := (ptrs + 1) / 2
		return r.Size >= lo && r.Size <= hi
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRandomizedConvergesAndRoundsLogarithmic(t *testing.T) {
	for _, n := range []int{2, 10, 1000, 10000} {
		l := list.RandomList(n, 3)
		m := pram.New(64)
		in, rounds := Randomized(m, l, 99)
		if err := Verify(l, in); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Expected O(log n) rounds; allow a generous constant.
		if n > 4 && rounds > 12*logCeil(n)+12 {
			t.Errorf("n=%d: %d rounds, too many", n, rounds)
		}
	}
}

func TestRandomizedDeterministicPerSeed(t *testing.T) {
	l := list.RandomList(200, 5)
	m1 := pram.New(4)
	in1, r1 := Randomized(m1, l, 42)
	m2 := pram.New(4)
	in2, r2 := Randomized(m2, l, 42)
	if r1 != r2 {
		t.Fatalf("rounds differ: %d vs %d", r1, r2)
	}
	for v := range in1 {
		if in1[v] != in2[v] {
			t.Fatal("same seed, different matchings")
		}
	}
}

func TestPredPar(t *testing.T) {
	l := list.FromOrder([]int{2, 0, 1})
	m := pram.New(2)
	pred := predPar(m, l)
	want := l.Pred()
	for v := range want {
		if pred[v] != want[v] {
			t.Fatalf("pred = %v, want %v", pred, want)
		}
	}
}

func TestLogCeil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10}
	for in, want := range cases {
		if got := logCeil(in); got != want {
			t.Errorf("logCeil(%d) = %d, want %d", in, got, want)
		}
	}
}
