package matching

import (
	"testing"

	"parlist/internal/bits"
	"parlist/internal/list"
	"parlist/internal/partition"
	"parlist/internal/pram"
)

// TestAllAlgorithmsProduceMaximalMatchings is the cross-product
// correctness sweep: every algorithm × generator × size × processor
// count must verify.
func TestAllAlgorithmsProduceMaximalMatchings(t *testing.T) {
	sizes := []int{2, 3, 4, 5, 7, 16, 63, 256, 1000, 4096}
	for _, n := range sizes {
		for _, g := range list.Generators() {
			l := g.Make(n, 42)
			if err := l.Validate(); err != nil {
				t.Fatalf("n=%d %s: bad list: %v", n, g.Name, err)
			}
			for _, p := range []int{1, 4, 100} {
				m := pram.New(p)
				if err := Verify(l, Match1(m, l, nil).In); err != nil {
					t.Errorf("match1 n=%d %s p=%d: %v", n, g.Name, p, err)
				}
				m = pram.New(p)
				if err := Verify(l, Match2(m, l, nil).In); err != nil {
					t.Errorf("match2 n=%d %s p=%d: %v", n, g.Name, p, err)
				}
				m = pram.New(p)
				r3, err := Match3(m, l, nil, Match3Config{})
				if err != nil {
					t.Fatalf("match3 n=%d %s p=%d: %v", n, g.Name, p, err)
				}
				if err := Verify(l, r3.In); err != nil {
					t.Errorf("match3 n=%d %s p=%d: %v", n, g.Name, p, err)
				}
				for _, i := range []int{1, 2, 3} {
					m = pram.New(p)
					r4, err := Match4(m, l, nil, Match4Config{I: i})
					if err != nil {
						t.Fatalf("match4 n=%d %s p=%d i=%d: %v", n, g.Name, p, i, err)
					}
					if err := Verify(l, r4.In); err != nil {
						t.Errorf("match4 n=%d %s p=%d i=%d: %v", n, g.Name, p, i, err)
					}
				}
			}
		}
	}
}

func TestMatch4TableRoute(t *testing.T) {
	for _, n := range []int{16, 255, 4096, 100000} {
		l := list.RandomList(n, 5)
		for _, i := range []int{2, 3, 5, 8} {
			m := pram.New(64)
			r, err := Match4(m, l, nil, Match4Config{I: i, UseTable: true})
			if err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
			if err := Verify(l, r.In); err != nil {
				t.Errorf("n=%d i=%d: %v (sets=%d table=%d)", n, i, err, r.Sets, r.TableSize)
			}
			if r.TableSize == 0 {
				t.Errorf("n=%d i=%d: table route reported no table", n, i)
			}
		}
	}
}

func TestMatch4ViaColoringMatchesDefaultValidity(t *testing.T) {
	for _, n := range []int{2, 5, 100, 5000} {
		for _, g := range list.Generators() {
			l := g.Make(n, 13)
			m := pram.New(32)
			r, err := Match4(m, l, nil, Match4Config{I: 2, ViaColoring: true})
			if err != nil {
				t.Fatalf("n=%d %s: %v", n, g.Name, err)
			}
			if err := Verify(l, r.In); err != nil {
				t.Errorf("via-coloring n=%d %s: %v", n, g.Name, err)
			}
		}
	}
}

func TestMatch4RejectsBadI(t *testing.T) {
	l := list.SequentialList(8)
	if _, err := Match4(pram.New(1), l, nil, Match4Config{I: 0}); err == nil {
		t.Error("I=0 accepted")
	}
}

func TestMatch1TimeBound(t *testing.T) {
	// T ≤ c·(n·G(n)/p + G(n)) with a modest constant.
	n := 1 << 14
	l := list.RandomList(n, 7)
	g := int64(bits.G(n))
	for _, p := range []int{1, 16, 1024, n} {
		m := pram.New(p)
		Match1(m, l, nil)
		bound := 20 * (int64(n)*g/int64(p) + g)
		if m.Time() > bound {
			t.Errorf("p=%d: time %d > %d", p, m.Time(), bound)
		}
	}
}

func TestMatch2TimeBound(t *testing.T) {
	n := 1 << 14
	l := list.RandomList(n, 7)
	logn := int64(bits.CeilLog2(n))
	for _, p := range []int{1, 16, 1024, n} {
		m := pram.New(p)
		Match2(m, l, nil)
		bound := 20 * (int64(n)/int64(p) + logn)
		if m.Time() > bound {
			t.Errorf("p=%d: time %d > %d", p, m.Time(), bound)
		}
	}
}

func TestMatch3TimeBound(t *testing.T) {
	n := 1 << 14
	l := list.RandomList(n, 7)
	for _, p := range []int{1, 16, 1024, n} {
		m := pram.New(p)
		if _, err := Match3(m, l, nil, Match3Config{CRCWBuild: true}); err != nil {
			t.Fatal(err)
		}
		bound := 20 * (Match3Predicted(n, p) + 10)
		if m.Time() > bound {
			t.Errorf("p=%d: time %d > %d", p, m.Time(), bound)
		}
	}
}

func TestMatch4TimeBound(t *testing.T) {
	// The Theorem 1 shape: T ≤ c·(i·n/p + log^(i) n) for the iterated
	// route (c covers all constant factors).
	n := 1 << 14
	l := list.RandomList(n, 7)
	for _, i := range []int{1, 2, 3} {
		li := int64(partition.RangeAfter(n, i))
		for _, p := range []int{1, 16, 1024, n} {
			m := pram.New(p)
			if _, err := Match4(m, l, nil, Match4Config{I: i}); err != nil {
				t.Fatal(err)
			}
			bound := 30 * (int64(i)*int64(n)/int64(p) + li)
			if m.Time() > bound {
				t.Errorf("i=%d p=%d: time %d > %d", i, p, m.Time(), bound)
			}
		}
	}
}

func TestMatch4OptimalAtThreshold(t *testing.T) {
	// Theorem 1: with p = n/log^(i) n processors, p·T = O(n), i.e.
	// efficiency bounded below by a constant.
	n := 1 << 16
	l := list.RandomList(n, 7)
	for _, i := range []int{2, 3} {
		x := partition.RangeAfter(n, i)
		p := n / x
		m := pram.New(p)
		r, err := Match4(m, l, nil, Match4Config{I: i})
		if err != nil {
			t.Fatal(err)
		}
		eff := r.Stats.Efficiency(int64(n))
		if eff < 0.02 {
			t.Errorf("i=%d p=%d: efficiency %.4f below constant floor", i, p, eff)
		}
	}
}

func TestMatch2SortDominates(t *testing.T) {
	// §3's motivating observation: the global sort is what limits
	// Match2's optimality — at p = n its additive terms dominate the
	// whole running time ("The time complexity of Step 2 in Match2
	// dominates the whole algorithm").
	n := 1 << 14
	l := list.RandomList(n, 7)
	m := pram.New(n)
	r := Match2(m, l, nil)
	var sortT, other int64
	for _, ph := range r.Stats.Phases {
		if ph.Name == "sort" {
			sortT = ph.Time
		} else {
			other += ph.Time
		}
	}
	if sortT == 0 {
		t.Fatal("no sort phase recorded")
	}
	if sortT <= other {
		t.Errorf("at p=n: sort time %d does not dominate the rest %d", sortT, other)
	}
}

func TestMatch4FloorBeatsMatch2FloorAtLargeN(t *testing.T) {
	// E8c's separation: at p = n the additive floors dominate; Match4's
	// is Θ(log^(i) n) while Match2's is Θ(log n).
	n := 1 << 16
	l := list.RandomList(n, 7)
	m2 := pram.New(n)
	r2 := Match2(m2, l, nil)
	m4 := pram.New(n)
	r4, err := Match4(m4, l, nil, Match4Config{I: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r4.Stats.Time >= r2.Stats.Time {
		t.Errorf("at p=n: match4 floor %d ≥ match2 floor %d", r4.Stats.Time, r2.Stats.Time)
	}
}

func TestExecutorsProduceSameMatching(t *testing.T) {
	n := 20000
	l := list.RandomList(n, 9)
	run := func(exec pram.Exec) (*Result, error) {
		m := pram.New(128, pram.WithExec(exec), pram.WithWorkers(4))
		return Match4(m, l, nil, Match4Config{I: 3})
	}
	rs, err := run(pram.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := run(pram.Goroutines)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Stats.Time != rg.Stats.Time || rs.Stats.Work != rg.Stats.Work {
		t.Errorf("step counts differ: %d/%d vs %d/%d", rs.Stats.Time, rs.Stats.Work, rg.Stats.Time, rg.Stats.Work)
	}
	if err := Verify(l, rg.In); err != nil {
		t.Errorf("goroutine matching invalid: %v", err)
	}
	// The goroutine executor may interleave greedy decisions differently
	// (the schedule guarantees both interleavings are safe), so only
	// validity — not equality — is required of the matching itself; the
	// deterministic phases must agree exactly.
	for v := range rs.In {
		if rs.In[v] != rg.In[v] {
			// Both valid is acceptable; stop at the first difference.
			return
		}
	}
}

func TestMatch4SetsMatchRangeBound(t *testing.T) {
	n := 1 << 12
	l := list.RandomList(n, 3)
	for i := 1; i <= 4; i++ {
		m := pram.New(16)
		r, err := Match4(m, l, nil, Match4Config{I: i})
		if err != nil {
			t.Fatal(err)
		}
		if r.Sets != partition.RangeAfter(n, i) {
			t.Errorf("i=%d: Sets = %d, want %d", i, r.Sets, partition.RangeAfter(n, i))
		}
	}
}

func TestMatch3TableSmallerThanN(t *testing.T) {
	// Lemma 5's side condition at practical sizes.
	for _, n := range []int{1 << 14, 1 << 16, 1 << 18} {
		l := list.RandomList(n, 3)
		m := pram.New(16)
		r, err := Match3(m, l, nil, Match3Config{})
		if err != nil {
			t.Fatal(err)
		}
		if r.TableSize >= n {
			t.Errorf("n=%d: table %d not smaller than n", n, r.TableSize)
		}
	}
}

func TestPartitionIteratedVerifies(t *testing.T) {
	n := 4096
	l := list.RandomList(n, 3)
	for i := 1; i <= 5; i++ {
		m := pram.New(8)
		lab, rng := PartitionIterated(m, l, nil, i)
		if err := partition.Verify(l, lab); err != nil {
			t.Fatalf("i=%d: %v", i, err)
		}
		if mx := partition.MaxLabel(l, lab); mx >= rng {
			t.Errorf("i=%d: max label %d ≥ range %d", i, mx, rng)
		}
	}
}

func TestPartitionTableVerifies(t *testing.T) {
	n := 4096
	l := list.RandomList(n, 3)
	for _, eff := range []int{2, 4, 6} {
		m := pram.New(8)
		lab, rng, tb, _, err := PartitionTable(m, l, nil, eff, Match3Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := partition.Verify(l, lab); err != nil {
			t.Fatalf("eff=%d: %v", eff, err)
		}
		if mx := partition.MaxLabel(l, lab); mx >= rng {
			t.Errorf("eff=%d: max label %d ≥ range %d", eff, mx, rng)
		}
		if tb == nil {
			t.Fatal("no table returned")
		}
	}
}

func TestResultFieldsPopulated(t *testing.T) {
	l := list.RandomList(256, 1)
	m := pram.New(4)
	r := Match1(m, l, nil)
	if r.Algorithm != "match1" || r.Size != Count(r.In) || r.Rounds == 0 {
		t.Errorf("result fields: %+v", r)
	}
	if r.Stats.Processors != 4 {
		t.Errorf("stats processors = %d", r.Stats.Processors)
	}
}

func TestSingleNodeLists(t *testing.T) {
	l := list.SequentialList(1)
	m := pram.New(4)
	if r := Match1(m, l, nil); r.Size != 0 || len(r.In) != 1 {
		t.Error("match1 n=1")
	}
	if r := Match2(pram.New(4), l, nil); r.Size != 0 || len(r.In) != 1 {
		t.Error("match2 n=1")
	}
	if _, err := Match3(pram.New(4), l, nil, Match3Config{}); err == nil {
		t.Log("match3 n=1 returned without error (acceptable)")
	}
	r4, err := Match4(pram.New(4), l, nil, Match4Config{I: 1})
	if err != nil || r4.Size != 0 {
		t.Errorf("match4 n=1: %v", err)
	}
	if err := Verify(l, []bool{false}); err != nil {
		t.Errorf("n=1 verify: %v", err)
	}
}
