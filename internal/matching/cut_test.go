package matching

import (
	"math/rand"
	"testing"
	"testing/quick"

	"parlist/internal/list"
	"parlist/internal/partition"
	"parlist/internal/pram"
)

// properLabels builds a random proper pointer labelling (consecutive
// pointers differ) with values in [0, r).
func properLabels(l *list.List, r int, rng *rand.Rand) []int {
	lab := make([]int, l.Len())
	prev := -1
	for v := l.Head; v != list.Nil; v = l.Next[v] {
		for {
			lab[v] = rng.Intn(r)
			if lab[v] != prev {
				break
			}
		}
		prev = lab[v]
	}
	return lab
}

func TestCutAndWalkOnRandomProperLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{2, 3, 4, 5, 10, 57, 500} {
		for _, r := range []int{2, 3, 6} {
			for trial := 0; trial < 20; trial++ {
				l := list.RandomList(n, rng.Int63())
				lab := properLabels(l, r, rng)
				m := pram.New(7)
				in := CutAndWalk(m, l, lab, r, nil)
				if err := Verify(l, in); err != nil {
					t.Fatalf("n=%d r=%d trial=%d: %v\nlab=%v", n, r, trial, err, lab)
				}
			}
		}
	}
}

func TestCutAndWalkQuickProperty(t *testing.T) {
	check := func(seed int64, nn uint16) bool {
		n := int(nn)%300 + 2
		rng := rand.New(rand.NewSource(seed))
		l := list.RandomList(n, seed)
		lab := properLabels(l, 3, rng)
		m := pram.New(5)
		in := CutAndWalk(m, l, lab, 3, nil)
		return Verify(l, in) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCutAndWalkWorstCaseMonotoneLabels(t *testing.T) {
	// Strictly increasing then decreasing label patterns (no interior
	// minima at all on long stretches).
	n := 60
	l := list.SequentialList(n)
	lab := make([]int, n)
	r := 6
	// Saw-tooth: 0,1,2,3,4,5,4,3,2,1,0,1,... only minima at the valleys.
	v, dir := 0, 1
	for i := 0; i < n; i++ {
		lab[i] = v
		v += dir
		if v == r-1 || v == 0 {
			dir = -dir
		}
	}
	m := pram.New(4)
	in := CutAndWalk(m, l, lab, r, nil)
	if err := Verify(l, in); err != nil {
		t.Fatalf("saw-tooth: %v", err)
	}
}

func TestCutAndWalkConstantSublistCharge(t *testing.T) {
	// Accounting: the walk round must be charged MaxSublistLen(r)·⌈n/p⌉,
	// keeping total time O(n/p) for constant r.
	n, p := 10000, 100
	l := list.RandomList(n, 2)
	m := pram.New(p)
	e := partition.NewEvaluator(partition.MSB, 16)
	lab := partition.Iterate(m, l, e, partition.IterationsToRange(n, 6))
	base := m.Time()
	CutAndWalk(m, l, lab, 6, nil)
	elapsed := m.Time() - base
	// pred (2) + cut (1) + walk (12) + fixup (1) rounds of n/p.
	want := int64(16 * n / p)
	if elapsed > want+20 {
		t.Errorf("CutAndWalk time %d exceeds %d", elapsed, want+20)
	}
}

func TestCutAndWalkPanicsOnBadInput(t *testing.T) {
	l := list.SequentialList(4)
	m := pram.New(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("short labels did not panic")
			}
		}()
		CutAndWalk(m, l, []int{1}, 3, nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("labelRange 1 did not panic")
			}
		}()
		CutAndWalk(m, l, []int{0, 1, 0, 1}, 1, nil)
	}()
}

func TestCutAndWalkTinyLists(t *testing.T) {
	m := pram.New(2)
	l1 := list.SequentialList(1)
	if in := CutAndWalk(m, l1, []int{0}, 3, nil); in[0] {
		t.Error("n=1 produced a matched pointer")
	}
	l2 := list.SequentialList(2)
	in := CutAndWalk(m, l2, []int{0, 1}, 3, nil)
	if !in[0] || in[1] {
		t.Errorf("n=2: in = %v, want [true false]", in)
	}
}

func TestMaxSublistLen(t *testing.T) {
	if MaxSublistLen(3) != 6 || MaxSublistLen(6) != 12 {
		t.Error("MaxSublistLen wrong")
	}
}

func TestCutAndWalkAcceptsPrecomputedPred(t *testing.T) {
	l := list.RandomList(50, 3)
	rng := rand.New(rand.NewSource(1))
	lab := properLabels(l, 3, rng)
	m := pram.New(4)
	in1 := CutAndWalk(m, l, lab, 3, nil)
	m2 := pram.New(4)
	in2 := CutAndWalk(m2, l, lab, 3, predPar(m2, l))
	for v := range in1 {
		if in1[v] != in2[v] {
			t.Fatal("pred argument changed the result")
		}
	}
}
