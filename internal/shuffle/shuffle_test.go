package shuffle

import (
	"testing"

	"parlist/internal/partition"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 2); err == nil {
		t.Error("u=1 accepted")
	}
	if _, err := New(4, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := New(256, 4); err == nil {
		t.Error("oversized graph accepted")
	}
}

func TestGraphK1IsComplete(t *testing.T) {
	g, err := New(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Vertices() != 5 {
		t.Fatalf("vertices = %d", g.Vertices())
	}
	if g.Edges() != 10 {
		t.Fatalf("edges = %d, want C(5,2)=10", g.Edges())
	}
	chi, exact := g.ChromaticNumber(1 << 20)
	if !exact || chi != 5 {
		t.Errorf("χ(K5) = %d (exact=%v)", chi, exact)
	}
}

func TestGraphK2Structure(t *testing.T) {
	u := 4
	g, err := New(u, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Valid 2-tuples: u(u-1) = 12.
	if g.Vertices() != 12 {
		t.Fatalf("vertices = %d, want 12", g.Vertices())
	}
	// (a,b)–(b,c): for each middle b, tails a≠b and heads c≠b: edges are
	// pairs sharing the overlap... count via adjacency symmetric check.
	for vi := range g.Vertices() {
		tup := g.TupleOf(vi)
		for _, w := range g.adj[vi] {
			wt := g.TupleOf(w)
			if tup[1] != wt[0] && wt[1] != tup[0] {
				t.Fatalf("edge %v–%v has no shift overlap", tup, wt)
			}
		}
	}
}

func TestFoldColoringIsProper(t *testing.T) {
	e := partition.NewEvaluator(partition.MSB, 8)
	for _, cfg := range [][2]int{{4, 2}, {8, 2}, {16, 2}, {4, 3}, {8, 3}, {4, 4}} {
		u, k := cfg[0], cfg[1]
		g, err := New(u, k)
		if err != nil {
			t.Fatal(err)
		}
		col, cnt := g.ColoringFromEvaluator(e)
		verified, err := g.VerifyColoring(col)
		if err != nil {
			t.Fatalf("u=%d k=%d: %v", u, k, err)
		}
		if verified != cnt {
			t.Fatalf("u=%d k=%d: count mismatch", u, k)
		}
		if ub := FoldUpperBound(u, k); cnt > ub {
			t.Errorf("u=%d k=%d: fold uses %d colours > bound %d", u, k, cnt, ub)
		}
	}
}

func TestGreedyColoringValidAndCompetitive(t *testing.T) {
	e := partition.NewEvaluator(partition.MSB, 8)
	for _, cfg := range [][2]int{{8, 2}, {16, 2}, {8, 3}} {
		u, k := cfg[0], cfg[1]
		g, err := New(u, k)
		if err != nil {
			t.Fatal(err)
		}
		gcol, gcnt := g.GreedyColoring()
		if _, err := g.VerifyColoring(gcol); err != nil {
			t.Fatalf("greedy colouring invalid: %v", err)
		}
		_, fcnt := g.ColoringFromEvaluator(e)
		// DSATUR should be within a factor 2 of the fold colouring on
		// these small instances (it usually beats it; the fold colouring
		// is itself a good colouring — that is the Remark's point).
		if gcnt > 2*fcnt {
			t.Errorf("u=%d k=%d: greedy %d far above fold %d", u, k, gcnt, fcnt)
		}
	}
}

func TestChromaticNumberRespectsLowerBound(t *testing.T) {
	for _, cfg := range [][2]int{{4, 2}, {8, 2}, {4, 3}} {
		u, k := cfg[0], cfg[1]
		g, err := New(u, k)
		if err != nil {
			t.Fatal(err)
		}
		chi, exact := g.ChromaticNumber(1 << 22)
		lb := LowerBound(u, k)
		if chi < lb {
			t.Errorf("u=%d k=%d: χ=%d below the Remark's lower bound %d (exact=%v)", u, k, chi, lb, exact)
		}
		// χ can never exceed the fold colouring.
		e := partition.NewEvaluator(partition.MSB, 8)
		_, fcnt := g.ColoringFromEvaluator(e)
		if exact && chi > fcnt {
			t.Errorf("u=%d k=%d: χ=%d above fold %d", u, k, chi, fcnt)
		}
	}
}

func TestChromaticBudgetExhaustion(t *testing.T) {
	g, err := New(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	chi, exact := g.ChromaticNumber(4)
	if exact && chi <= 2 {
		t.Errorf("implausible χ=%d with 4-node budget", chi)
	}
	// The inexact answer must still be a valid upper bound (greedy's).
	_, ub := g.GreedyColoring()
	if chi > ub {
		t.Errorf("reported %d > greedy upper bound %d", chi, ub)
	}
}

func TestTupleOfRoundTrip(t *testing.T) {
	g, err := New(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for vi := 0; vi < g.Vertices(); vi++ {
		tup := g.TupleOf(vi)
		if len(tup) != 3 {
			t.Fatal("tuple length")
		}
		code := tup[0] + tup[1]*5 + tup[2]*25
		if g.verts[vi] != code {
			t.Fatalf("round trip failed at %d", vi)
		}
		if tup[0] == tup[1] || tup[1] == tup[2] {
			t.Fatalf("invalid tuple %v in graph", tup)
		}
	}
}

func TestVerifyColoringRejectsBad(t *testing.T) {
	g, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	col := make([]int, g.Vertices())
	if _, err := g.VerifyColoring(col); err == nil {
		t.Error("constant colouring accepted")
	}
	if _, err := g.VerifyColoring(col[:3]); err == nil {
		t.Error("short colouring accepted")
	}
}

func TestLowerBoundValues(t *testing.T) {
	if LowerBound(16, 2) != 4 {
		t.Errorf("LowerBound(16,2) = %d, want log 16 = 4", LowerBound(16, 2))
	}
	if LowerBound(16, 3) != 2 {
		t.Errorf("LowerBound(16,3) = %d, want log^2 16 = 2", LowerBound(16, 3))
	}
	if LowerBound(4, 4) != 2 {
		t.Errorf("LowerBound(4,4) = %d, want floor 2", LowerBound(4, 4))
	}
}
