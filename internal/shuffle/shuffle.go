// Package shuffle implements the graph-theoretic view of matching
// partition functions from the paper's Remark and appendix:
//
//	"Construct a graph G as in [10] with each vertex of the graph
//	denoted by an i-tuple (a₁, a₂, …, a_i) […]. Vertices (a₁,…,a_i) and
//	(b₁,…,b_i) are connected by an undirected edge iff a_j = b_{j+1},
//	1 ≤ j < i. A valid vertex coloring of G using 2·log^(i-1) n (1+o(1))
//	colors gives a table for a matching partition function."
//
// A k-argument matching partition function over the universe [0, u) is
// exactly a proper colouring of this shuffle graph restricted to the
// tuples that can occur along a labelled list (adjacent entries
// distinct). The Remark states the two sides of the story this package
// lets experiments measure:
//
//   - upper bound: f^(k) (the fold of f) properly colours the graph with
//     2·log^(k-1) u (1+o(1)) colours; recent work [8] achieves
//     log^(k) u (1+o(1));
//   - lower bound: no matching partition function can use fewer than
//     log^(k-1) u colours [8,10].
//
// For small universes the package computes greedy colourings and exact
// chromatic numbers by branch-and-bound, quantifying the gap between
// f^(k), the best achievable, and the lower bound (experiment E13).
package shuffle

import (
	"fmt"

	"parlist/internal/bits"
	"parlist/internal/partition"
)

// Graph is the shuffle graph over adjacent-distinct k-tuples on [0, u).
type Graph struct {
	U, K int
	// verts lists tuple codes (base-u little-endian: field j = element
	// a_{j+1}) of the valid (adjacent-distinct) tuples.
	verts []int
	// index maps a tuple code to its position in verts (-1 = invalid).
	index []int
	// adj[i] lists neighbours of verts[i] as vertex positions.
	adj [][]int
}

// MaxVertices bounds construction (u^k enumeration).
const MaxVertices = 1 << 16

// New builds the shuffle graph for k-tuples over [0, u). k ≥ 1, u ≥ 2,
// and u^k must stay within MaxVertices.
func New(u, k int) (*Graph, error) {
	if u < 2 || k < 1 {
		return nil, fmt.Errorf("shuffle: New(u=%d, k=%d) out of range", u, k)
	}
	total := 1
	for j := 0; j < k; j++ {
		total *= u
		if total > MaxVertices {
			return nil, fmt.Errorf("shuffle: u^k = %d^%d exceeds %d vertices", u, k, MaxVertices)
		}
	}
	g := &Graph{U: u, K: k, index: make([]int, total)}
	for code := 0; code < total; code++ {
		if validTuple(code, u, k) {
			g.index[code] = len(g.verts)
			g.verts = append(g.verts, code)
		} else {
			g.index[code] = -1
		}
	}
	g.adj = make([][]int, len(g.verts))
	for vi, code := range g.verts {
		// Successors: tuples whose prefix is this tuple's suffix —
		// shift out a₁, shift in any c ≠ a_k.
		suffix := code / u // fields a₂…a_k in positions 0…k-2
		last := topField(code, u, k)
		for c := 0; c < u; c++ {
			if c == last {
				continue
			}
			succ := suffix + c*pow(u, k-1)
			si := g.index[succ]
			if si < 0 || si == vi {
				continue
			}
			g.adj[vi] = append(g.adj[vi], si)
			g.adj[si] = append(g.adj[si], vi)
		}
	}
	// Deduplicate adjacency (an edge can be discovered from both ends,
	// and for k = 1 both directions coincide).
	for vi := range g.adj {
		seen := map[int]bool{}
		out := g.adj[vi][:0]
		for _, w := range g.adj[vi] {
			if !seen[w] {
				seen[w] = true
				out = append(out, w)
			}
		}
		g.adj[vi] = out
	}
	return g, nil
}

func validTuple(code, u, k int) bool {
	prev := -1
	for j := 0; j < k; j++ {
		f := code % u
		if f == prev {
			return false
		}
		prev = f
		code /= u
	}
	return true
}

func topField(code, u, k int) int {
	return code / pow(u, k-1)
}

func pow(b, e int) int {
	r := 1
	for j := 0; j < e; j++ {
		r *= b
	}
	return r
}

// Vertices returns the number of valid tuples.
func (g *Graph) Vertices() int { return len(g.verts) }

// Edges returns the number of undirected edges.
func (g *Graph) Edges() int {
	e := 0
	for _, a := range g.adj {
		e += len(a)
	}
	return e / 2
}

// TupleOf decodes vertex vi into its k elements (a₁ first).
func (g *Graph) TupleOf(vi int) []int {
	t := make([]int, g.K)
	code := g.verts[vi]
	for j := 0; j < g.K; j++ {
		t[j] = code % g.U
		code /= g.U
	}
	return t
}

// VerifyColoring checks that col is a proper colouring (adjacent
// vertices differ) and returns the number of distinct colours.
func (g *Graph) VerifyColoring(col []int) (int, error) {
	if len(col) != len(g.verts) {
		return 0, fmt.Errorf("shuffle: colouring has %d entries, want %d", len(col), len(g.verts))
	}
	seen := map[int]bool{}
	for vi, a := range g.adj {
		seen[col[vi]] = true
		for _, w := range a {
			if col[vi] == col[w] {
				return 0, fmt.Errorf("shuffle: vertices %v and %v share colour %d",
					g.TupleOf(vi), g.TupleOf(w), col[vi])
			}
		}
	}
	return len(seen), nil
}

// ColoringFromEvaluator colours each vertex with the f^(k) fold of its
// tuple — Lemma 2's matching partition function viewed as a colouring.
// Returns the colouring and its colour count.
func (g *Graph) ColoringFromEvaluator(e *partition.Evaluator) ([]int, int) {
	col := make([]int, len(g.verts))
	seen := map[int]bool{}
	for vi := range g.verts {
		col[vi] = e.Fold(g.TupleOf(vi))
		seen[col[vi]] = true
	}
	return col, len(seen)
}

// GreedyColoring colours the graph with the DSATUR heuristic (pick the
// uncoloured vertex with the most distinct neighbour colours, break
// ties by degree, assign the smallest available colour), returning the
// colouring and colour count.
func (g *Graph) GreedyColoring() ([]int, int) {
	n := len(g.verts)
	col := make([]int, n)
	for i := range col {
		col[i] = -1
	}
	satur := make([]map[int]bool, n)
	for i := range satur {
		satur[i] = map[int]bool{}
	}
	maxc := 0
	for done := 0; done < n; done++ {
		best, bestSat, bestDeg := -1, -1, -1
		for vi := 0; vi < n; vi++ {
			if col[vi] >= 0 {
				continue
			}
			s, d := len(satur[vi]), len(g.adj[vi])
			if s > bestSat || (s == bestSat && d > bestDeg) {
				best, bestSat, bestDeg = vi, s, d
			}
		}
		c := 0
		for satur[best][c] {
			c++
		}
		col[best] = c
		if c+1 > maxc {
			maxc = c + 1
		}
		for _, w := range g.adj[best] {
			satur[w][c] = true
		}
	}
	return col, maxc
}

// ChromaticNumber computes the exact chromatic number by iterative
// deepening branch-and-bound, up to the given search-node budget.
// Returns (χ, true) on success or (best upper bound, false) when the
// budget is exhausted.
func (g *Graph) ChromaticNumber(budget int) (int, bool) {
	_, ub := g.GreedyColoring()
	lb := g.cliqueLowerBound()
	for c := lb; c < ub; c++ {
		nodes := budget
		if g.colorable(c, &nodes) {
			return c, true
		}
		if nodes <= 0 {
			return ub, false
		}
	}
	return ub, true
}

// cliqueLowerBound finds a greedy clique; its size lower-bounds χ.
func (g *Graph) cliqueLowerBound() int {
	best := 1
	for vi := range g.verts {
		clique := []int{vi}
		for _, w := range g.adj[vi] {
			ok := true
			for _, c := range clique {
				if !g.hasEdge(w, c) {
					ok = false
					break
				}
			}
			if ok {
				clique = append(clique, w)
			}
		}
		if len(clique) > best {
			best = len(clique)
		}
	}
	return best
}

func (g *Graph) hasEdge(a, b int) bool {
	for _, w := range g.adj[a] {
		if w == b {
			return true
		}
	}
	return false
}

// colorable runs backtracking with c colours, ordered by degree, with
// symmetry breaking on the first vertex.
func (g *Graph) colorable(c int, nodes *int) bool {
	n := len(g.verts)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < n; i++ {
		j := i
		for j > 0 && len(g.adj[order[j-1]]) < len(g.adj[order[j]]) {
			order[j-1], order[j] = order[j], order[j-1]
			j--
		}
	}
	col := make([]int, n)
	for i := range col {
		col[i] = -1
	}
	var rec func(pos, usedMax int) bool
	rec = func(pos, usedMax int) bool {
		if pos == n {
			return true
		}
		*nodes--
		if *nodes <= 0 {
			return false
		}
		vi := order[pos]
		lim := usedMax + 1 // symmetry breaking: at most one fresh colour
		if lim > c {
			lim = c
		}
		for cc := 0; cc < lim; cc++ {
			ok := true
			for _, w := range g.adj[vi] {
				if col[w] == cc {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			col[vi] = cc
			nu := usedMax
			if cc == usedMax {
				nu++
			}
			if rec(pos+1, nu) {
				return true
			}
			col[vi] = -1
			if *nodes <= 0 {
				return false
			}
		}
		return false
	}
	return rec(0, 0)
}

// LowerBound returns the Remark's lower bound log^(k-1) u on the
// colours of any k-argument matching partition function [8,10]
// (minimum 2 — adjacent tuples always need two colours).
func LowerBound(u, k int) int {
	lb := bits.LogIter(u, k-1)
	if lb < 2 {
		lb = 2
	}
	return lb
}

// FoldUpperBound returns Lemma 2's 2·log^(k-1) u (1+o(1)) bound in its
// computable form: the label range of f^(k) starting from universe u.
func FoldUpperBound(u, k int) int {
	return partition.RangeAfter(u, k-1)
}
