// Package parlist is a Go reproduction of Yijie Han's "Matching
// Partition a Linked List and Its Optimization" (SPAA 1989): parallel
// symmetry breaking on linked lists via matching partition functions
// (deterministic coin tossing), four maximal-matching algorithms
// (Match1–Match4), the WalkDown processor-scheduling optimization, and
// the applications the paper names — 3-colouring, maximal independent
// sets, and list ranking / data-dependent prefix — all on a simulated
// PRAM that counts synchronous steps so measured costs can be compared
// against the paper's bounds.
//
// The root package re-exports the public façade; the implementation
// lives under internal/ (see DESIGN.md for the full inventory):
//
//	res, err := parlist.MaximalMatching(parlist.RandomList(1<<20, 1),
//	    parlist.Options{Processors: 4096})
//
// runs the paper's optimal algorithm (Match4, Theorem 1) and reports the
// matching together with simulated PRAM time and work.
package parlist

import (
	"parlist/internal/core"
	"parlist/internal/engine"
	"parlist/internal/list"
	"parlist/internal/partition"
	"parlist/internal/pram"
)

// Re-exported option and result types.
type (
	// Options configures an algorithm run; see core.Options.
	Options = core.Options
	// Result is a computed maximal matching plus PRAM accounting.
	Result = core.Result
	// Algorithm names one of the paper's algorithms.
	Algorithm = core.Algorithm
	// List is an array-stored linked list (X[0..n-1] with NEXT pointers).
	List = list.List
	// Stats is a simulated-PRAM accounting snapshot.
	Stats = pram.Stats
	// Exec selects the simulator executor for Options.Exec.
	Exec = pram.Exec
	// Variant selects the matching partition function's bit choice for
	// Options.Variant.
	Variant = partition.Variant
	// Tracer records a round-level execution log for Options.Tracer.
	Tracer = pram.Tracer
	// PhaseStat is one named accounting phase inside Stats.
	PhaseStat = pram.PhaseStat
)

// Executor selectors. ExecNative is the fast-path mode: the hot
// operations (Match4 matching, partition, list ranks, prefix) run as
// direct work-parallel kernels with no simulated step charging
// (Stats report zero Time/Work for them); every other operation falls
// back to the pooled machine and keeps its exact simulated accounting.
const (
	ExecSequential = pram.Sequential
	ExecGoroutines = pram.Goroutines
	ExecPooled     = pram.Pooled
	ExecNative     = pram.Native
)

// Matching-partition-function variants.
const (
	VariantMSB = partition.MSB
	VariantLSB = partition.LSB
)

// Algorithm selectors.
const (
	Match1     = core.AlgoMatch1
	Match2     = core.AlgoMatch2
	Match3     = core.AlgoMatch3
	Match4     = core.AlgoMatch4
	Sequential = core.AlgoSequential
	Randomized = core.AlgoRandomized
)

// Typed validation errors (test with errors.Is).
var (
	ErrNilList           = core.ErrNilList
	ErrBadProcessors     = core.ErrBadProcessors
	ErrUnknownAlgorithm  = core.ErrUnknownAlgorithm
	ErrUnknownRankScheme = core.ErrUnknownRankScheme
)

// Engine is a reusable session: one warm simulated machine (with its
// persistent worker pool) plus a scratch arena recycled across
// requests, so repeated calls at a fixed size run without heap
// allocation. Safe for concurrent use — requests serialize onto the
// machine. Construct with NewEngine, release with Close:
//
//	eng := parlist.NewEngine(parlist.EngineConfig{Processors: 1024})
//	defer eng.Close()
//	for _, l := range lists {
//	    res, err := eng.MaximalMatching(l, parlist.Options{})
//	    ...
//	}
type Engine = core.Engine

// EngineConfig shapes a dedicated engine (default processor count,
// executor, real worker cap, watchdog, tracer).
type EngineConfig = core.EngineConfig

// EngineStats are an engine's cumulative counters: requests served,
// failures, machine rebuilds, simulated time/work, arena hit rates.
type EngineStats = core.EngineStats

// NewEngine returns a dedicated engine with a warm machine + workspace.
func NewEngine(cfg EngineConfig) *Engine { return core.NewEngine(cfg) }

// EnginePool is a sharded pool of warm engines fronted by bounded
// admission queues: Submit returns a Future immediately (or ErrQueueFull
// under overload), Do blocks with backoff, same-size requests stick to
// the same engine so each arena stays hot, and an optional result cache
// replays idempotent traffic without touching an engine. Construct with
// NewEnginePool, release with Close:
//
//	p := parlist.NewEnginePool(parlist.PoolConfig{Engines: 4})
//	defer p.Close()
//	res, err := p.Do(ctx, parlist.EngineRequest{List: l})
type EnginePool = core.EnginePool

// PoolConfig shapes an engine pool: engine count (default GOMAXPROCS),
// per-engine queue depth, result-cache capacity, the shared per-engine
// EngineConfig, and the resilience knobs (Retry, Breaker).
type PoolConfig = core.PoolConfig

// PoolStats is a pool-wide counter snapshot: totals, rejections,
// cancellations, cache hits, cumulative queue-wait/service time, and
// per-engine load.
type PoolStats = core.PoolStats

// Future is the handle for a pending pool request: Wait for the result,
// Done to select on completion, Metrics for per-request timings.
type Future = core.Future

// RetryPolicy (PoolConfig.Retry) bounds automatic retry of transient
// faults — worker panics and barrier stalls — on a different engine
// with capped jittered backoff. Deadline, overload, and validation
// failures are never retried. Retried results are bit-identical to
// fault-free runs.
type RetryPolicy = core.RetryPolicy

// BreakerPolicy (PoolConfig.Breaker) configures the per-engine circuit
// breaker: Threshold consecutive transient faults quarantine the
// engine, which is rebuilt off the hot path and readmitted only after
// verifier-checked canary probes pass.
type BreakerPolicy = core.BreakerPolicy

// BreakerState is an engine breaker's health state (closed / open /
// half-open), reported per engine in PoolStats.
type BreakerState = core.BreakerState

// Breaker states, reported per engine in PoolStats.
const (
	BreakerClosed   = core.BreakerClosed
	BreakerOpen     = core.BreakerOpen
	BreakerHalfOpen = core.BreakerHalfOpen
)

// EngineRequest is the raw typed request served by Engine.Run and
// EnginePool.Submit/Do — the full-control entry point (op selection,
// per-request fault plans).
type EngineRequest = engine.Request

// EngineResult is the raw typed result for an EngineRequest.
type EngineResult = engine.Result

// Op selects what an EngineRequest computes.
type Op = engine.Op

// The raw request operations (EngineRequest.Op).
const (
	OpMatching   = engine.OpMatching
	OpPartition  = engine.OpPartition
	OpThreeColor = engine.OpThreeColor
	OpMIS        = engine.OpMIS
	OpRank       = engine.OpRank
	OpPrefix     = engine.OpPrefix
	OpSchedule   = engine.OpSchedule
)

// ShardStats is one sharded request's execution accounting — fan-out,
// reduced-list segments, PEM-style exchange volume, per-shard contract
// wall times and their imbalance, step retries — attached to
// EngineResult.Sharding by EnginePool.ShardedDo:
//
//	res, err := p.ShardedDo(ctx, parlist.EngineRequest{Op: parlist.OpRank, List: l}, 4)
//	fmt.Println(res.Sharding.ExchangeBytes)
type ShardStats = core.ShardStats

// Pool overload sentinels (test with errors.Is).
var (
	// ErrQueueFull reports that Submit found the admission queue at
	// capacity; back off or use Do.
	ErrQueueFull = core.ErrQueueFull
	// ErrPoolClosed reports a Submit or Do after Close.
	ErrPoolClosed = core.ErrPoolClosed
	// ErrDeadlineExceeded reports a request that blew its
	// EngineRequest.Deadline budget — while queued or mid-service.
	// Distinct from sheds and cancellations; never retried.
	ErrDeadlineExceeded = core.ErrDeadlineExceeded
	// ErrBadShards reports a ShardedDo fan-out below 1.
	ErrBadShards = core.ErrBadShards
	// ErrShardUnsupported reports an op ShardedDo cannot decompose
	// into shard-local segments (only rank and prefix are shardable).
	ErrShardUnsupported = core.ErrShardUnsupported
)

// NewEnginePool returns a pool of warm engines for concurrent serving.
func NewEnginePool(cfg PoolConfig) *EnginePool { return core.NewEnginePool(cfg) }

// RankScheme selects a list-ranking algorithm for Options.Rank.
type RankScheme = core.RankScheme

// Ranking scheme selectors.
const (
	RankContraction  = core.RankContraction
	RankWyllie       = core.RankWyllie
	RankLoadBalanced = core.RankLoadBalanced
	RankRandomMate   = core.RankRandomMate
)

// MaximalMatching computes a maximal matching of the list's pointers.
func MaximalMatching(l *List, o Options) (*Result, error) {
	return core.MaximalMatching(l, o)
}

// Verify checks that in is a maximal matching of l.
func Verify(l *List, in []bool) error { return core.Verify(l, in) }

// ScheduleMatching converts any matching partition (labels in [0, K),
// consecutive pointers labelled differently) into a maximal matching
// with the paper's §4 processor-scheduling technique: O(n/p + K) time.
func ScheduleMatching(l *List, lab []int, K int, o Options) (*Result, error) {
	return core.ScheduleMatching(l, lab, K, o)
}

// Partition computes an O(log^(i) n)-set matching partition of the
// pointers, returning labels and the label-range size.
func Partition(l *List, i int, o Options) ([]int, int, error) {
	return core.Partition(l, i, o)
}

// ThreeColor computes a proper 3-colouring of the list's nodes.
func ThreeColor(l *List, o Options) ([]int, Stats, error) {
	return core.ThreeColor(l, o)
}

// MIS computes a maximal independent set of the list's nodes.
func MIS(l *List, o Options) ([]bool, Stats, error) {
	return core.MIS(l, o)
}

// Rank computes each node's distance from the head.
func Rank(l *List, o Options) ([]int, Stats, error) {
	return core.Rank(l, o)
}

// Prefix computes data-dependent prefix sums over the list.
func Prefix(l *List, vals []int, o Options) ([]int, Stats, error) {
	return core.Prefix(l, vals, o)
}

// List generators.

// RandomList returns a list visiting a random permutation of addresses.
func RandomList(n int, seed int64) *List { return list.RandomList(n, seed) }

// SequentialList returns the list 0 → 1 → … → n-1.
func SequentialList(n int) *List { return list.SequentialList(n) }

// ReversedList returns the list n-1 → … → 0.
func ReversedList(n int) *List { return list.ReversedList(n) }

// ZigZagList returns the alternating extremes order 0, n-1, 1, n-2, ….
func ZigZagList(n int) *List { return list.ZigZagList(n) }

// BlockedList returns a list with block-local address locality.
func BlockedList(n, blockSize int, seed int64) *List {
	return list.BlockedList(n, blockSize, seed)
}

// FromOrder builds a list visiting the given address permutation.
func FromOrder(order []int) *List { return list.FromOrder(order) }
